//! In-workspace stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros the workspace's property
//! tests use: `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`
//! (plain and weighted), `Just`, `any`, ranges, tuples, a regex-lite string
//! strategy, `collection::vec`, `option::of`, and the `prop_map` /
//! `prop_flat_map` / `prop_filter` / `prop_recursive` / `boxed` adapters.
//!
//! Differences from the real crate, deliberate for an offline build:
//! failing cases are NOT shrunk — the panic reports the deterministic case
//! seed instead, which reproduces the input exactly; and value generation
//! is plain uniform sampling rather than bias-guided.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below_range(self.size.start, self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option`s: `None` one time in four, like the real
    /// crate's default `of` weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each function runs its body for `cases`
/// deterministic samplings of its `name in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($pname:pat in $pstrategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __test_id = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__test_id, __case);
                    $(let $pname = $crate::strategy::Strategy::sample(&($pstrategy), &mut __rng);)+
                    // The body runs inside a fallible closure so tests may
                    // `?`-propagate TestCaseError, like the real crate.
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(__err) = __outcome {
                        panic!("{} case {__case}: {__err}", __test_id);
                    }
                }
            }
        )*
    };
}

/// Assert inside a property test; panics with the usual assert message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
