//! The `Strategy` trait, combinators, and primitive strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no `ValueTree`/shrinking layer: a
/// strategy just samples directly from the deterministic [`TestRng`].
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Build recursive values: `f` maps a strategy for depth-`d` values to
    /// one for depth-`d+1`. Each level mixes the base case back in so
    /// sampled structures vary in depth up to `depth`.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let deeper = f(strat).boxed();
            strat = Union::new(vec![(1, base.clone()), (2, deeper)]).boxed();
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("BoxedStrategy")
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.inner.sample(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter '{}': too many rejections", self.whence);
    }
}

/// Weighted choice among same-typed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof: zero total weight");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("pick below total weight")
    }
}

/// Full-range strategy for primitives, via `any::<T>()`.
pub fn any<T: ArbitraryPrimitive>() -> Any<T> {
    Any(PhantomData)
}

#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryPrimitive> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait ArbitraryPrimitive {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryPrimitive for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryPrimitive for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl ArbitraryPrimitive for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl ArbitraryPrimitive for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl ArbitraryPrimitive for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        // Avoid i32::MIN: several tests feed these through `.abs()`-style
        // arithmetic where MIN would overflow in ways the real crate's
        // biased generation rarely exercises.
        let v = rng.next_u64() as i32;
        if v == i32::MIN {
            i32::MIN + 1
        } else {
            v
        }
    }
}

impl ArbitraryPrimitive for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles with well-spread exponents: reinterpret random
        // bits, rejecting NaN/inf.
        loop {
            let v = f64::from_bits(rng.next_u64());
            if v.is_finite() {
                return v;
            }
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Regex-lite string strategy: supports literal characters, `.`,
/// character classes like `[a-zA-Z0-9_ ]`, and `{m}` / `{m,n}` repetition —
/// the subset the workspace's tests use.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // One element: a character class, wildcard, or literal…
        let class: Vec<(char, char)> = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((chars[i], chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((chars[i], chars[i]));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class: {pattern}");
                i += 1; // consume ']'
                ranges
            }
            '.' => {
                i += 1;
                vec![(' ', '~')] // printable ASCII
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        // …followed by an optional {m} / {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated repetition: {pattern}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("repeat lower bound"),
                    n.trim().parse::<usize>().expect("repeat upper bound"),
                ),
                None => {
                    let exact = body.trim().parse::<usize>().expect("repeat count");
                    (exact, exact)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.below_range(lo, hi + 1);
        let total_span: u64 = class
            .iter()
            .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
            .sum();
        for _ in 0..count {
            let mut pick = rng.below(total_span);
            for (a, b) in &class {
                let span = (*b as u64) - (*a as u64) + 1;
                if pick < span {
                    out.push(char::from_u32(*a as u32 + pick as u32).expect("ascii range"));
                    break;
                }
                pick -= span;
            }
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A `Vec` of strategies samples one value from each element, in order —
/// how row generators compose per-column strategies.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        for _ in 0..1_000 {
            let v = (0i64..20).prop_map(|x| x * 2).sample(&mut r);
            assert!(v % 2 == 0 && (0..40).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut r = rng();
        let s = Union::new(vec![(3, Just(true).boxed()), (1, Just(false).boxed())]);
        let trues = (0..10_000).filter(|_| s.sample(&mut r)).count();
        assert!((6_500..8_500).contains(&trues), "trues={trues}");
    }

    #[test]
    fn regex_lite_shapes() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "c_[a-z0-9_]{0,8}".sample(&mut r);
            assert!(s.starts_with("c_") && s.len() <= 10, "{s:?}");
            let t = "[a-c]{1,3}".sample(&mut r);
            assert!(
                (1..=3).contains(&t.len()) && t.chars().all(|c| ('a'..='c').contains(&c)),
                "{t:?}"
            );
            let dot = ".{0,120}".sample(&mut r);
            assert!(dot.len() <= 120);
        }
    }

    #[test]
    fn recursive_terminates_and_varies() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(()).prop_map(|_| Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut r = rng();
        let mut max_seen = 0;
        for _ in 0..200 {
            max_seen = max_seen.max(depth(&strat.sample(&mut r)));
        }
        assert!(max_seen >= 2 && max_seen <= 4, "max depth {max_seen}");
    }

    #[test]
    fn filter_rejects_until_match() {
        let mut r = rng();
        for _ in 0..100 {
            let v = (0i64..100)
                .prop_filter("even", |v| v % 2 == 0)
                .sample(&mut r);
            assert_eq!(v % 2, 0);
        }
    }
}
