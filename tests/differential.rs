//! Differential correctness: the same query must produce identical results
//! under every engine configuration — compiled vs interpreted expressions,
//! lazy vs eager loading, compressed vs decoded processing, 1 vs 4 workers,
//! broadcast vs partitioned joins, all-at-once vs phased scheduling, spill
//! on vs off. This pins the semantics all the §V/§VI ablations rely on.

use presto::cluster::{Cluster, ClusterConfig};
use presto::common::{Session, Value};
use presto::connector::{CatalogManager, Connector};
use presto::connectors::MemoryConnector;
use presto::workload::TpchGenerator;
use std::sync::Arc;

fn make_cluster(workers: usize) -> Cluster {
    let mem = MemoryConnector::new();
    TpchGenerator::new(0.002).load_memory(&mem);
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn Connector>);
    Cluster::start(
        ClusterConfig {
            workers,
            threads_per_worker: 2,
            ..ClusterConfig::test()
        },
        catalogs,
    )
    .unwrap()
}

const QUERIES: &[&str] = &[
    "SELECT returnflag, linestatus, COUNT(*), SUM(quantity), AVG(extendedprice) \
     FROM lineitem GROUP BY returnflag, linestatus",
    "SELECT o.orderpriority, COUNT(*) FROM orders o \
     JOIN lineitem l ON o.orderkey = l.orderkey \
     WHERE l.discount < 0.03 GROUP BY o.orderpriority",
    "SELECT c.mktsegment, SUM(o.totalprice) FROM customer c \
     JOIN orders o ON c.custkey = o.custkey GROUP BY c.mktsegment",
    "SELECT suppkey, COUNT(*) AS n FROM lineitem GROUP BY suppkey \
     HAVING COUNT(*) > 5 ORDER BY n DESC, suppkey LIMIT 20",
    "SELECT shipmode, \
     SUM(CASE WHEN quantity > 25 THEN 1 ELSE 0 END) AS big, \
     SUM(CASE WHEN quantity <= 25 THEN 1 ELSE 0 END) AS small \
     FROM lineitem GROUP BY shipmode",
    "SELECT COUNT(DISTINCT partkey) FROM lineitem WHERE discount = 0.05",
];

fn run_sorted(cluster: &Cluster, sql: &str, session: &Session) -> Vec<Vec<Value>> {
    let mut rows = cluster.execute_with_session(sql, session).unwrap().rows();
    rows.sort();
    rows
}

/// Equality modulo floating-point summation order: distributed plans sum
/// doubles in different orders, so compare with a relative tolerance.
fn rows_equal(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                    (Value::Double(p), Value::Double(q)) => {
                        let scale = p.abs().max(q.abs()).max(1.0);
                        (p - q).abs() <= scale * 1e-9
                    }
                    _ => x == y,
                })
        })
}

#[test]
fn results_invariant_across_configurations() {
    let reference_cluster = make_cluster(1);
    let wide_cluster = make_cluster(4);
    let base = Session::for_catalog("memory");

    // Configuration axes.
    let mut sessions: Vec<(String, Session)> = Vec::new();
    sessions.push(("baseline".into(), base.clone()));
    let mut s = base.clone();
    s.compiled_expressions = false;
    sessions.push(("interpreted".into(), s));
    let mut s = base.clone();
    s.lazy_loading = false;
    sessions.push(("eager".into(), s));
    let mut s = base.clone();
    s.process_compressed = false;
    sessions.push(("decoded".into(), s));
    let mut s = base.clone();
    s.join_distribution = presto::common::session::JoinDistribution::Broadcast;
    sessions.push(("broadcast".into(), s));
    let mut s = base.clone();
    s.join_distribution = presto::common::session::JoinDistribution::Partitioned;
    sessions.push(("partitioned".into(), s));
    let mut s = base.clone();
    s.scheduling_policy = presto::common::session::SchedulingPolicy::Phased;
    sessions.push(("phased".into(), s));
    let mut s = base.clone();
    s.spill_enabled = true;
    sessions.push(("spill".into(), s));
    let mut s = base.clone();
    s.join_reordering = false;
    sessions.push(("no-cbo".into(), s));

    for sql in QUERIES {
        let expected = run_sorted(&reference_cluster, sql, &base);
        assert!(!expected.is_empty(), "reference produced no rows for {sql}");
        for (name, session) in &sessions {
            let narrow = run_sorted(&reference_cluster, sql, session);
            assert!(
                rows_equal(&narrow, &expected),
                "config '{name}' on 1 worker diverged for: {sql}\n{narrow:?}\nvs\n{expected:?}"
            );
            let wide = run_sorted(&wide_cluster, sql, session);
            assert!(
                rows_equal(&wide, &expected),
                "config '{name}' on 4 workers diverged for: {sql}\n{wide:?}\nvs\n{expected:?}"
            );
        }
    }
}
