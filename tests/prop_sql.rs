//! Cluster-level property test: randomly generated SQL over a shared
//! dataset must return identical results on a 1-worker and a 4-worker
//! cluster, under default and ablated sessions. This catches distribution
//! bugs (partial/final aggregation, shuffle routing, join sides) that no
//! fixed query list would.

use once_cell_lite::Lazy;
use presto::cluster::{Cluster, ClusterConfig};
use presto::common::{Session, Value};
use presto::connector::{CatalogManager, Connector};
use presto::connectors::MemoryConnector;
use presto::workload::TpchGenerator;
use proptest::prelude::*;
use std::sync::Arc;

/// Tiny once-cell so the clusters build once per process.
mod once_cell_lite {
    use std::sync::OnceLock;

    pub struct Lazy<T> {
        cell: OnceLock<T>,
        init: fn() -> T,
    }

    impl<T> Lazy<T> {
        pub const fn new(init: fn() -> T) -> Lazy<T> {
            Lazy {
                cell: OnceLock::new(),
                init,
            }
        }

        pub fn get(&self) -> &T {
            self.cell.get_or_init(self.init)
        }
    }
}

fn build_cluster(workers: usize) -> Cluster {
    let mem = MemoryConnector::new();
    TpchGenerator::new(0.001).load_memory(&mem);
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn Connector>);
    Cluster::start(
        ClusterConfig {
            workers,
            threads_per_worker: 2,
            ..ClusterConfig::test()
        },
        catalogs,
    )
    .unwrap()
}

static NARROW: Lazy<Cluster> = Lazy::new(|| build_cluster(1));
static WIDE: Lazy<Cluster> = Lazy::new(|| build_cluster(4));

#[derive(Debug, Clone)]
struct GeneratedQuery {
    sql: String,
}

fn arb_query() -> impl Strategy<Value = GeneratedQuery> {
    let filter = prop_oneof![
        Just(String::new()),
        (1i64..50).prop_map(|n| format!("WHERE quantity < {n}.5 ")),
        (0i64..8).prop_map(|d| format!("WHERE discount = 0.0{d} ")),
        Just("WHERE returnflag = 'R' ".to_string()),
        (0i64..1000).prop_map(|k| format!("WHERE orderkey % 7 = {} ", k % 7)),
    ];
    let agg = prop_oneof![
        Just("COUNT(*)"),
        Just("SUM(quantity)"),
        Just("MIN(extendedprice)"),
        Just("MAX(orderkey)"),
        Just("COUNT(DISTINCT suppkey)"),
    ];
    let group = prop_oneof![
        Just(""),
        Just("returnflag"),
        Just("shipmode"),
        Just("returnflag, linestatus"),
    ];
    (filter, agg, group).prop_map(|(filter, agg, group)| {
        let sql = if group.is_empty() {
            format!("SELECT {agg} FROM lineitem {filter}")
        } else {
            format!("SELECT {group}, {agg} FROM lineitem {filter}GROUP BY {group}")
        };
        GeneratedQuery { sql }
    })
}

fn run_sorted(cluster: &Cluster, sql: &str, session: &Session) -> Vec<Vec<Value>> {
    let mut rows = cluster
        .execute_with_session(sql, session)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .rows();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn distributed_results_match_single_worker(q in arb_query()) {
        let base = Session::default();
        let expected = run_sorted(NARROW.get(), &q.sql, &base);
        let wide = run_sorted(WIDE.get(), &q.sql, &base);
        prop_assert_eq!(&wide, &expected, "4-worker diverged: {}", q.sql);
        // Ablations on the wide cluster.
        let mut interpreted = base.clone();
        interpreted.compiled_expressions = false;
        prop_assert_eq!(
            &run_sorted(WIDE.get(), &q.sql, &interpreted),
            &expected,
            "interpreted diverged: {}",
            q.sql
        );
        let mut eager = base.clone();
        eager.lazy_loading = false;
        eager.process_compressed = false;
        prop_assert_eq!(
            &run_sorted(WIDE.get(), &q.sql, &eager),
            &expected,
            "eager/decoded diverged: {}",
            q.sql
        );
    }
}
