//! End-to-end metadata-cache integration (§IV-B metastore, §V-C footers).
//!
//! A second run of the same query against the Hive connector must parse
//! zero PORC footers (everything comes from the footer cache), and writes
//! must invalidate the cached footer, listing, and statistics entries so
//! readers never see stale metadata.

use presto::cache::MetadataCache;
use presto::cluster::{Cluster, ClusterConfig};
use presto::common::{DataType, Schema, Session, Value};
use presto::connector::{CatalogManager, Connector};
use presto::connectors::HiveConnector;
use presto::page::Page;
use std::path::PathBuf;
use std::sync::Arc;

fn fixture(name: &str) -> (Cluster, Arc<HiveConnector>, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "presto-test-metacache-{name}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let config = ClusterConfig::test();
    let cache = MetadataCache::new(config.cache.clone());
    let hive = HiveConnector::with_cache(dir.join("hive"), Arc::clone(&cache)).unwrap();
    let schema = Schema::of(&[("uid", DataType::Bigint), ("amount", DataType::Double)]);
    let rows: Vec<Vec<Value>> = (0..500)
        .map(|i| vec![Value::Bigint(i % 50), Value::Double(i as f64)])
        .collect();
    hive.load_table("events", schema.clone(), &[Page::from_rows(&schema, &rows)])
        .unwrap();
    hive.load_table("staging", schema.clone(), &[Page::from_rows(&schema, &rows)])
        .unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register("hive", Arc::clone(&hive) as Arc<dyn Connector>);
    let cluster = Cluster::start_with_cache(config, catalogs, cache).unwrap();
    (cluster, hive, dir)
}

#[test]
fn warm_query_parses_zero_footers() {
    let (cluster, hive, dir) = fixture("warm");
    let session = Session::for_catalog("hive");
    let sql = "SELECT COUNT(*) FROM events";
    let out = cluster.execute_with_session(sql, &session).unwrap();
    assert_eq!(out.rows()[0][0], Value::Bigint(500));
    let cold_footers = hive.io_stats().footer_reads();
    assert!(cold_footers > 0, "cold run fetches footers");
    let out = cluster.execute_with_session(sql, &session).unwrap();
    assert_eq!(out.rows()[0][0], Value::Bigint(500));
    assert_eq!(
        hive.io_stats().footer_reads(),
        cold_footers,
        "warm run parses zero footers"
    );
    assert!(
        cluster.telemetry().cache_counters().hits > 0,
        "warm run is served from the cache"
    );
    drop(cluster);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn insert_invalidates_footer_and_stats_entries() {
    let (cluster, hive, dir) = fixture("insert");
    let session = Session::for_catalog("hive");
    // Warm every cache layer: stats, listing, footers.
    let stats = hive.metadata().table_statistics("events");
    assert_eq!(stats.row_count.value(), Some(500.0));
    let out = cluster
        .execute_with_session("SELECT COUNT(*) FROM events", &session)
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::Bigint(500));
    // The INSERT adds a new data file; the listing, footer, and statistics
    // caches must all drop their entries for the table.
    cluster
        .execute_with_session(
            "INSERT INTO events SELECT uid, amount FROM staging",
            &session,
        )
        .unwrap();
    let out = cluster
        .execute_with_session("SELECT COUNT(*) FROM events", &session)
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::Bigint(1000), "new file is visible");
    let stats = hive.metadata().table_statistics("events");
    assert_eq!(
        stats.row_count.value(),
        Some(1000.0),
        "statistics recomputed after the write"
    );
    drop(cluster);
    std::fs::remove_dir_all(&dir).ok();
}
