//! The §IV-F2 memory-arbitration experiment: memory can be overcommitted
//! ("it is generally safe to overcommit the memory of the cluster as long
//! as mechanisms exist to keep the cluster healthy when nodes are low on
//! memory") because the reserved pool unblocks the biggest query, and
//! per-query limits kill runaways instead of the cluster.

use presto::cluster::{Cluster, ClusterConfig};
use presto::common::{Session, Value};
use presto::connector::{CatalogManager, Connector};
use presto::connectors::MemoryConnector;
use presto::workload::TpchGenerator;
use std::sync::Arc;

fn tight_cluster(node_memory: u64, kill: bool) -> Cluster {
    let mem = MemoryConnector::new();
    TpchGenerator::new(0.002).load_memory(&mem);
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn Connector>);
    Cluster::start(
        ClusterConfig {
            workers: 2,
            threads_per_worker: 2,
            node_memory_bytes: node_memory,
            reserved_pool_bytes: node_memory,
            kill_on_memory_exhausted: kill,
            ..ClusterConfig::test()
        },
        catalogs,
    )
    .unwrap()
}

/// Memory-hungry aggregation (one group per lineitem row pair).
const HUNGRY: &str = "SELECT orderkey, partkey, COUNT(*), SUM(extendedprice) \
                      FROM lineitem GROUP BY orderkey, partkey";

#[test]
fn overcommit_survives_via_reserved_pool() {
    // The general pool is small enough that several concurrent hungry
    // queries exceed it; the reserved-pool promotion must let them finish
    // one at a time rather than deadlocking.
    let cluster = tight_cluster(1 << 20, false);
    let handles: Vec<_> = (0..4)
        .map(|_| cluster.submit(HUNGRY, Session::default()))
        .collect();
    let mut ok = 0;
    for h in handles {
        if h.join().unwrap().is_ok() {
            ok += 1;
        }
    }
    assert_eq!(ok, 4, "all queries complete despite overcommit");
}

#[test]
fn per_query_limit_kills_only_the_offender() {
    let cluster = tight_cluster(64 << 20, false);
    // A query with an absurdly low per-node limit dies…
    let mut tiny = Session::default();
    tiny.query_max_memory_per_node = 4 << 10;
    let err = cluster.execute_with_session(HUNGRY, &tiny).unwrap_err();
    assert_eq!(
        err.error.code,
        presto::common::ErrorCode::InsufficientResources
    );
    // …while a normal query on the same cluster succeeds right after.
    let out = cluster.execute("SELECT COUNT(*) FROM lineitem").unwrap();
    assert!(matches!(out.rows()[0][0], Value::Bigint(n) if n > 0));
}

#[test]
fn cache_memory_is_charged_as_system_memory() {
    // Cache retention participates in §IV-F2 arbitration: bytes the
    // metadata cache retains appear as system memory on every worker pool
    // and shrink the general pool's headroom.
    let cluster = tight_cluster(64 << 20, false);
    let cache = cluster.metadata_cache();
    assert!(cluster.worker_system_memory().iter().all(|&b| b == 0));
    cache.statistics("memory", "lineitem", || {
        presto::common::TableStatistics::with_row_count(1000.0)
    });
    let retained = cache.total_bytes() as i64;
    assert!(retained > 0, "cache retains the inserted statistics");
    for bytes in cluster.worker_system_memory() {
        assert_eq!(bytes, retained, "every pool sees the cache's balance");
    }
    cache.clear();
    assert!(cluster.worker_system_memory().iter().all(|&b| b == 0));
}

#[test]
fn spilling_lets_queries_run_under_the_limit() {
    let cluster = tight_cluster(64 << 20, false);
    // Low per-node limit + spilling: the aggregation revokes state to disk
    // instead of dying (§IV-F2 "Revocation is processed by spilling state
    // to disk. Presto supports spilling for hash joins and aggregations").
    let mut session = Session::default();
    session.query_max_memory_per_node = 64 << 10;
    session.spill_enabled = true;
    // Note: per-node *limits* kill regardless of spill; what spill handles
    // is pool exhaustion. So run against a small pool instead.
    let small_pool = tight_cluster(256 << 10, false);
    let out = small_pool.execute_with_session(HUNGRY, &{
        let mut s = Session::default();
        s.spill_enabled = true;
        s
    });
    assert!(
        out.is_ok(),
        "spilling should allow completion: {:?}",
        out.err()
    );
    drop(cluster);
    let _ = session;
}

#[test]
fn shuffle_operators_charge_actual_retained_bytes() {
    // §IV-F2: shuffle buffers are system memory. Both ends of the exchange
    // must charge the bytes they actually retain — not a flat per-operator
    // token — so arbitration sees real pressure. The sink's charge is its
    // coalescing accumulator plus its share of the output buffer; the
    // source's charge is the client's buffered wire bytes.
    use presto::exec::exchange::{
        ExchangeSourceOperator, OutputRouting, PartitionedOutputOperator,
    };
    use presto::exec::Operator;
    use presto::page::Page;
    use presto::shuffle::{ExchangeClient, OutputBuffer};
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    let schema = presto::common::Schema::of(&[("k", presto::common::DataType::Bigint)]);
    let page = |lo: i64| {
        Page::from_rows(
            &schema,
            &(lo..lo + 200)
                .map(|v| vec![Value::Bigint(v)])
                .collect::<Vec<_>>(),
        )
    };

    // Sink side: with flush targets set beyond the input, every row sits in
    // the partitioner, so the charge must grow with the data (a constant
    // token would stay flat).
    let buffer = OutputBuffer::new(4, usize::MAX);
    let mut sink = PartitionedOutputOperator::new(
        Arc::clone(&buffer),
        OutputRouting::Hash { channels: vec![0] },
    )
    .with_targets(usize::MAX, usize::MAX);
    let mut last = 0usize;
    for batch in 0..3 {
        sink.add_input(page(batch * 200)).unwrap();
        let charge = sink.system_memory_bytes();
        assert!(
            charge > last,
            "charge must track accumulated rows: {charge} after batch {batch}"
        );
        last = charge;
    }
    assert_eq!(buffer.retained_bytes(), 0, "nothing flushed yet");
    sink.finish();
    // Accumulators flushed into the buffer: the charge now equals exactly
    // the wire bytes the buffer retains for unacknowledged pages.
    let (wire, _) = buffer.byte_totals();
    assert_eq!(buffer.retained_bytes() as u64, wire);
    assert_eq!(sink.system_memory_bytes(), buffer.retained_bytes());
    for p in 0..4 {
        let r = buffer.poll(p, 0, usize::MAX);
        buffer.poll(p, r.next_token, usize::MAX); // acknowledge
    }
    assert_eq!(sink.system_memory_bytes(), 0, "acked pages are freed");

    // Source side: the operator's charge is the client's buffered wire
    // bytes, which return to zero once the pages are consumed.
    let upstream = OutputBuffer::new(1, usize::MAX);
    for batch in 0..3 {
        upstream.enqueue(0, &page(batch * 200));
    }
    upstream.set_no_more_pages();
    let expected_wire = upstream.byte_totals().0 as usize;
    let client = Arc::new(ExchangeClient::new(usize::MAX, Duration::ZERO));
    client.add_source(upstream, 0);
    let no_more = Arc::new(AtomicBool::new(true));
    let mut source = ExchangeSourceOperator::new(Arc::clone(&client), no_more);
    client.poll_progress().unwrap();
    assert_eq!(
        source.system_memory_bytes(),
        expected_wire,
        "source charges exactly the fetched wire bytes"
    );
    let mut rows = 0usize;
    while !source.is_finished() {
        if let Some(p) = source.output().unwrap() {
            rows += p.row_count();
        }
    }
    assert_eq!(rows, 600);
    assert_eq!(source.system_memory_bytes(), 0, "drained client charges nothing");
}

#[test]
fn join_build_memory_is_exact_flat_layout() {
    // §V-E: the join build charges memory from the flat partitioned layout
    // itself (pages + row-address vectors + hash arrays), not an estimate.
    // The bridge's reported bytes must match the table's exact accounting
    // at every phase boundary, so arbitration and revoke decisions see
    // truthful numbers.
    use presto::common::{DataType, Schema};
    use presto::exec::join::{HashBuilderOperator, JoinBridge};
    use presto::exec::Operator;
    use presto::page::Page;

    let schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Varchar)]);
    let rows: Vec<Vec<Value>> = (0..2_000)
        .map(|i| vec![Value::Bigint(i % 331), Value::varchar(&format!("row-{i}"))])
        .collect();
    let bridge = JoinBridge::new(vec![0], 1);
    let mut builder = HashBuilderOperator::new(Arc::clone(&bridge));
    let mut input_bytes = 0;
    for piece in rows.chunks(257) {
        let page = Page::from_rows(&schema, piece);
        input_bytes += page.size_in_bytes();
        builder.add_input(page).unwrap();
        // While accumulating, the charge covers at least the page bytes
        // plus the partition entries (16 bytes per keyed row).
        assert!(bridge.build_bytes() >= input_bytes);
    }
    builder.finish();
    let table = bridge.table().expect("build complete");
    // Exact identity: reported bytes == page bytes + flat layout bytes.
    let page_bytes: usize = table.pages().iter().map(Page::size_in_bytes).sum();
    assert_eq!(
        table.memory_bytes(),
        page_bytes + table.hash_layout_bytes(),
        "no estimate constants in the accounting"
    );
    assert_eq!(bridge.build_bytes(), table.memory_bytes());
    assert_eq!(builder.user_memory_bytes(), table.memory_bytes());
    assert_eq!(table.row_count(), 2_000);
}

#[test]
fn joins_complete_under_tight_memory_with_exact_accounting() {
    // End-to-end: a join query on a tight general pool still completes —
    // the exact build-side accounting admits it without overcharging.
    let cluster = tight_cluster(8 << 20, false);
    let out = cluster
        .execute(
            "SELECT COUNT(*) FROM orders o, lineitem l \
             WHERE o.orderkey = l.orderkey",
        )
        .unwrap();
    assert!(matches!(out.rows()[0][0], Value::Bigint(n) if n > 0));
}
