//! Federation: one query spanning several connectors (§I "extensible,
//! federated design"), plus connector-specific behaviours observable only
//! through full queries.

use presto::cluster::{Cluster, ClusterConfig};
use presto::common::{DataType, NodeId, Schema, Session, Value};
use presto::connector::{CatalogManager, Connector};
use presto::connectors::{HiveConnector, MemoryConnector, RaptorConnector, ShardedSqlConnector};
use std::sync::Arc;

struct Fixture {
    cluster: Cluster,
    hive: Arc<HiveConnector>,
    sharded: Arc<ShardedSqlConnector>,
    dir: std::path::PathBuf,
}

fn fixture(name: &str) -> Fixture {
    let dir = std::env::temp_dir().join(format!("presto-federation-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mem = MemoryConnector::new();
    mem.load_rows(
        "users",
        Schema::of(&[("uid", DataType::Bigint), ("name", DataType::Varchar)]),
        &(0..50)
            .map(|i| vec![Value::Bigint(i), Value::varchar(format!("u{i}"))])
            .collect::<Vec<_>>(),
    );
    mem.analyze("users").unwrap();

    let hive = HiveConnector::new(dir.join("hive")).unwrap();
    let events = Schema::of(&[("uid", DataType::Bigint), ("amount", DataType::Double)]);
    let rows: Vec<Vec<Value>> = (0..2000)
        .map(|i| vec![Value::Bigint(i % 50), Value::Double((i % 7) as f64)])
        .collect();
    hive.load_table(
        "events",
        events.clone(),
        &[presto::page::Page::from_rows(&events, &rows)],
    )
    .unwrap();

    let raptor = RaptorConnector::new(dir.join("raptor"), vec![NodeId(0), NodeId(1)]).unwrap();
    let scores = Schema::of(&[("uid", DataType::Bigint), ("score", DataType::Bigint)]);
    raptor
        .create_bucketed_table("scores", &scores, vec![0], 4)
        .unwrap();
    let rows: Vec<Vec<Value>> = (0..50)
        .map(|i| vec![Value::Bigint(i), Value::Bigint(i * 2)])
        .collect();
    raptor
        .load_table("scores", &[presto::page::Page::from_rows(&scores, &rows)])
        .unwrap();

    let sharded = ShardedSqlConnector::new(4);
    let accounts = Schema::of(&[("uid", DataType::Bigint), ("balance", DataType::Double)]);
    let rows: Vec<Vec<Value>> = (0..50)
        .map(|i| vec![Value::Bigint(i), Value::Double(i as f64)])
        .collect();
    sharded.load_table("accounts", accounts, 0, &rows);

    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn Connector>);
    catalogs.register("hive", Arc::clone(&hive) as Arc<dyn Connector>);
    catalogs.register("raptor", raptor as Arc<dyn Connector>);
    catalogs.register("sharded", Arc::clone(&sharded) as Arc<dyn Connector>);
    let cluster = Cluster::start(ClusterConfig::test(), catalogs).unwrap();
    Fixture {
        cluster,
        hive,
        sharded,
        dir,
    }
}

#[test]
fn four_catalog_join() {
    let f = fixture("four");
    let out = f
        .cluster
        .execute(
            "SELECT u.name, COUNT(*) AS events, MAX(s.score) AS score, MAX(a.balance) AS balance \
             FROM memory.users u \
             JOIN hive.events e ON u.uid = e.uid \
             JOIN raptor.scores s ON u.uid = s.uid \
             JOIN sharded.accounts a ON u.uid = a.uid \
             WHERE u.uid < 3 \
             GROUP BY u.name ORDER BY u.name",
        )
        .unwrap();
    let rows = out.rows();
    assert_eq!(rows.len(), 3);
    // Each uid < 50 appears in events 40 times (2000 / 50).
    assert_eq!(rows[0][1], Value::Bigint(40));
    assert_eq!(rows[1][2], Value::Bigint(2)); // score = uid * 2
    assert_eq!(rows[2][3], Value::Double(2.0));
    std::fs::remove_dir_all(&f.dir).ok();
}

#[test]
fn predicate_pushdown_prunes_hive_stripes() {
    let f = fixture("pushdown");
    let (bytes_before, _, pruned_before, _) = f.hive.io_stats().snapshot();
    // Highly selective filter: stripe stats should prune reads.
    let out = f
        .cluster
        .execute("SELECT COUNT(*) FROM hive.events WHERE uid = 1 AND amount = 1.0")
        .unwrap();
    assert!(matches!(out.rows()[0][0], Value::Bigint(_)));
    let (bytes_after, _, _pruned_after, _) = f.hive.io_stats().snapshot();
    assert!(bytes_after > bytes_before, "something was read");
    let _ = pruned_before;
    std::fs::remove_dir_all(&f.dir).ok();
}

#[test]
fn sharded_pushdown_reads_only_matching_rows() {
    let f = fixture("sharded");
    let before = f.sharded.rows_scanned();
    let out = f
        .cluster
        .execute("SELECT balance FROM sharded.accounts WHERE uid = 7")
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::Double(7.0));
    // §IV-B3-2: "only matching data is ever read from MySQL".
    assert_eq!(f.sharded.rows_scanned() - before, 1);
    std::fs::remove_dir_all(&f.dir).ok();
}

#[test]
fn cross_catalog_insert() {
    let f = fixture("insert");
    // ETL from hive into memory.
    f.cluster
        .execute(
            "SELECT 1", // warm-up no-op
        )
        .unwrap();
    let mem = f.cluster.catalogs().catalog("memory").unwrap();
    mem.metadata()
        .create_table(
            "event_summary",
            &Schema::of(&[("uid", DataType::Bigint), ("total", DataType::Double)]),
        )
        .unwrap();
    let out = f
        .cluster
        .execute(
            "INSERT INTO memory.event_summary \
             SELECT uid, SUM(amount) FROM hive.events GROUP BY uid",
        )
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::Bigint(50));
    let check = f
        .cluster
        .execute_with_session(
            "SELECT COUNT(*) FROM event_summary",
            &Session::for_catalog("memory"),
        )
        .unwrap();
    assert_eq!(check.rows()[0][0], Value::Bigint(50));
    std::fs::remove_dir_all(&f.dir).ok();
}
